// Command paper regenerates every table and figure of the paper's
// evaluation section:
//
//	paper -table 1                 TABLE I (configuration)
//	paper -table 2                 TABLE II (throughput + ratio)
//	paper -table sample            §IV sample-size formulation
//	paper -fig 1                   Fig. 1 (register file, pinout OP)
//	paper -fig 2                   Fig. 2 (L1D, pinout OP)
//	paper -fig 3                   Fig. 3 (L1D AVF, software OP)
//	paper -fig ablation-window     window-length sweep (E8)
//	paper -fig ablation-latches    RTL-only latch injection (E7)
//	paper -fig ablation-models     fault-model ablation (E9)
//	paper -fig early-stop          adaptive-engine ablation (E10)
//	paper -fig pruning             golden-trace pruning ablation (E11)
//	paper -fig avf                 injection-free ACE/AVF estimation (E12)
//	paper -fig protection          protection-scheme ROI (E13)
//	paper -all                     everything above but E9-E13, as ONE sweep
//
// -fault-model selects the fault model every figure's campaigns inject
// (transient, burst, stuck-at, stuck-at-0, stuck-at-1, intermittent)
// and -burst the burst width; the E9 ablation sweeps all four models
// itself and renders the Masked/Mismatch/SDC class breakdown on both
// abstraction levels.
//
// -early-stop and -target-error switch every figure's campaigns onto
// the adaptive engine: -early-stop ends each replay at the cycle its
// corrupted state reconverges with the golden run (identical classes,
// fewer cycles), -target-error E stops issuing injections once every
// class proportion is within E at the campaign confidence. The E10
// ablation (`-fig early-stop`) runs fixed-vs-adaptive side by side and
// reports runs/cycles saved against estimate drift.
//
// -prune switches every figure's campaigns onto golden-trace fault
// pruning: `-prune dead` classifies transients whose corrupted bits
// are overwritten before any read as Masked with zero replay cycles
// (exact), `-prune classes` additionally replays one representative
// per first-consumer equivalence class and extrapolates MeRLiN-style
// (approximate; intervals widen to the effective sample size). The E11
// ablation (`-fig pruning`) runs full-vs-dead-vs-classes side by side
// on both levels and reports cycles, wall time and drift.
//
// The E12 experiment (`-fig avf`) sweeps the same golden lifetime trace
// into an injection-free ACE/AVF estimate per tracked structure and
// cross-checks it against the fault-injection campaigns it rides on, on
// both abstraction levels: the exhaustive weighted AVF must land inside
// the plan-sample Wilson interval, the measured unsafe fraction never
// exceeds the ACE prediction, and the per-level logical-masking gap is
// the reported cross-level observable — all with zero extra replays.
//
// The E13 experiment (`-fig protection`) wraps the register file, L1D
// and (RTL-only) pipeline latches in parity, SECDED and
// duplication-with-compare, runs each protected campaign against its
// unprotected twin under all four fault models on both levels, and
// folds the class splits into an ROI table: unsafeness and
// silent-corruption reduction per kilobit of overhead, with the
// checker-logic DUE rate as the blind-spot observable — it collapses
// from 1 to 0 between the transient and stuck-at rows because an
// asserted-0 checker path disarms the comparator instead of tripping
// it.
//
// -cpuprofile and -memprofile write pprof profiles of the regeneration
// so hot-path work is measurable without ad-hoc patching. -metrics ADDR
// serves live Prometheus metrics and /debug/pprof over HTTP while the
// regeneration runs; -metrics-dump prints the final values to stderr at
// exit. Metrics are inert — regenerated figures are byte-identical with
// observability on or off.
//
// -remote URL runs every campaign on a faultsimd worker fleet through
// the coordinator at URL instead of simulating locally; the shard
// merge's determinism contract makes the regenerated figures
// byte-identical either way. -json emits figures as machine-readable
// JSON, and SIGINT/SIGTERM drains in-flight replays and flushes
// checkpoint shards before exiting, so `-checkpoint` resumes cleanly.
//
// -all plans every campaign up front and schedules them as a single
// sweep: at most one golden run per (model, benchmark), shared across
// figures; TABLE II reuses the measured golden elapsed times. Use
// -injections 4000 for the paper's full Leveugle sample (slow); the
// default keeps a complete regeneration laptop-scale. -checkpoint DIR
// streams per-run outcomes to JSONL shards so an interrupted
// regeneration resumes instead of restarting.
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/campaign"
	"repro/internal/cli"
	"repro/internal/core"
	"repro/internal/distrib"
	"repro/internal/fault"
	"repro/internal/prof"
	"repro/internal/report"
	"repro/internal/stats"
)

// ablationWindows is the window-length sweep regenerated by
// -fig ablation-window and -all (0 = run-to-end).
var ablationWindows = []uint64{100, 500, 2_000, 20_000, 0}

func main() {
	err := run(os.Args[1:])
	switch {
	case errors.Is(err, campaign.ErrInterrupted):
		fmt.Fprintln(os.Stderr, "paper: interrupted; checkpoints flushed, re-run to resume")
		os.Exit(130)
	case err != nil:
		fmt.Fprintln(os.Stderr, "paper:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("paper", flag.ContinueOnError)
	var (
		table      = fs.String("table", "", "regenerate a table: 1, 2 or sample")
		figure     = fs.String("fig", "", "regenerate a figure: 1, 2, 3, ablation-window, ablation-latches, ablation-models, early-stop, pruning, avf, protection")
		all        = fs.Bool("all", false, "regenerate every table and figure as one sweep")
		injections = fs.Int("injections", 0, "statistical sample size per campaign (default 400; paper: 4000)")
		seed       = fs.Int64("seed", 1, "campaign RNG seed")
		window     = fs.Int64("window", -1, "pinout observation window in cycles; 0 = run to program end (default 500, the scaled 20k)")
		faultModel = fs.String("fault-model", "transient", "fault model injected by figures: transient, burst, stuck-at, stuck-at-0, stuck-at-1, intermittent")
		burst      = fs.Int("burst", 0, "adjacent bits per burst injection (default 2)")
		span       = fs.Uint64("span", 0, "intermittent active window in cycles (default goldenCycles/16)")
		workers    = fs.Int("workers", 0, "parallel sweep workers (default GOMAXPROCS)")
		benches    = fs.String("benches", "", "comma-separated benchmark subset")
		checkpoint = fs.String("checkpoint", "", "stream per-run outcomes to JSONL shards in this directory and resume from them")
		earlyStop  = fs.Bool("early-stop", false, "adaptive engine: end a replay the moment its state reconverges with golden (classes unchanged, cycles saved)")
		targetErr  = fs.Float64("target-error", 0, "adaptive engine: stop issuing injections once every class proportion is within this margin at the campaign confidence (0 = run the full plan)")
		prune      = fs.String("prune", "off", "golden-trace fault pruning: off, dead (exact, zero-replay Masked), classes (MeRLiN-style extrapolation)")
		lanes      = fs.Int("lanes", 64, "bit-parallel lockstep replay width on the RTL model, 1-64 (1 = scalar engine; byte-identical results at any width)")
		cpuprofile = fs.String("cpuprofile", "", "write a CPU profile of the regeneration to this file")
		memprofile = fs.String("memprofile", "", "write a heap profile at exit to this file")
		metricsAt  = fs.String("metrics", "", "serve /metrics (Prometheus text) and /debug/pprof on this address while the regeneration runs")
		metricsOut = fs.Bool("metrics-dump", false, "dump the final metric values to stderr at exit (Prometheus text)")
		csv        = fs.Bool("csv", false, "emit figures as CSV instead of tables")
		jsonOut    = fs.Bool("json", false, "emit figures as machine-readable JSON instead of tables")
		remote     = fs.String("remote", "", "run every campaign on a faultsimd fleet via this coordinator base URL (checkpointing then lives coordinator-side; -checkpoint is ignored)")
		version    = fs.Bool("version", false, "print version and exit")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *version {
		cli.PrintVersion("paper")
		return nil
	}
	stopProf, err := prof.Start(*cpuprofile, *memprofile)
	if err != nil {
		return err
	}
	defer func() {
		if perr := stopProf(); perr != nil {
			fmt.Fprintln(os.Stderr, "paper: profile:", perr)
		}
	}()
	stopMetrics, err := cli.MetricsFlags{Addr: *metricsAt, Dump: *metricsOut}.Start("paper")
	if err != nil {
		return err
	}
	defer stopMetrics()

	params := core.DefaultParams()
	if *injections > 0 {
		params.Injections = *injections
	}
	params.Seed = *seed
	if *window >= 0 {
		params.Window = uint64(*window)
	}
	fp, err := fault.ParseParams(*faultModel)
	if err != nil {
		return err
	}
	fp.Burst = *burst
	fp.Span = *span
	params.Fault = fp
	params.Workers = *workers
	params.Checkpoint = *checkpoint
	params.EarlyStop = *earlyStop
	params.TargetError = *targetErr
	if params.Prune, err = campaign.ParsePruneMode(*prune); err != nil {
		return err
	}
	params.Lanes = *lanes
	if *benches != "" {
		params.Benches = strings.Split(*benches, ",")
	}
	// Graceful interruption: the first SIGINT/SIGTERM stops issuing
	// replays, drains in-flight work and flushes checkpoint shards.
	params.Stop = cli.StopOnSignal("paper")
	if *remote != "" {
		params.Runner = distrib.NewClient(*remote).SweepRunner()
	}

	emitFig := func(fig *core.FigureResult, err error) error {
		if err != nil {
			return err
		}
		switch {
		case *jsonOut:
			s, err := report.FigureJSON(fig)
			if err != nil {
				return err
			}
			fmt.Print(s)
		case *csv:
			fmt.Print(report.FigureCSV(fig))
		default:
			fmt.Print(report.Figure(fig))
		}
		return nil
	}

	emitSample := func() error {
		n, err := stats.LeveugleSampleSize(0, 0.02, 0.99)
		if err != nil {
			return err
		}
		fmt.Printf("== Statistical sample (Leveugle et al.) ==\n\n")
		fmt.Printf("error margin 2%%, confidence 99%%  ->  n = %d (paper rounds to 4000)\n", n)
		fmt.Printf("this run uses n = %d per campaign\n\n", params.Injections)
		return nil
	}

	if *all {
		// One sweep for everything: goldens shared across figures and
		// TABLE II, replays through one global pool.
		fmt.Println(report.TableI(core.DefaultSetup()))
		if err := emitSample(); err != nil {
			return err
		}
		res, err := params.RunAll(ablationWindows)
		if err != nil {
			return err
		}
		fmt.Println(report.TableII(res.Table2Rows, res.Table2AvgRatio))
		for _, fig := range []*core.FigureResult{
			res.Fig1, res.Fig2, res.Fig3, res.AblationWindow, res.AblationLatches,
		} {
			if err := emitFig(fig, nil); err != nil {
				return err
			}
		}
		fmt.Printf("\nsweep: %d golden runs, %d replays resumed from checkpoint, wall %.1fs\n",
			res.GoldenRuns, res.Resumed, res.Elapsed.Seconds())
		return nil
	}

	did := false
	wantTable := func(name string) bool { return *table == name }
	wantFig := func(name string) bool { return *figure == name }

	if wantTable("1") {
		did = true
		fmt.Println(report.TableI(core.DefaultSetup()))
	}
	if wantTable("sample") {
		did = true
		if err := emitSample(); err != nil {
			return err
		}
	}
	if wantTable("2") {
		did = true
		rows, avg, err := params.Table2()
		if err != nil {
			return err
		}
		fmt.Println(report.TableII(rows, avg))
	}
	if wantFig("1") {
		did = true
		if err := emitFig(params.Figure1()); err != nil {
			return err
		}
	}
	if wantFig("2") {
		did = true
		if err := emitFig(params.Figure2()); err != nil {
			return err
		}
	}
	if wantFig("3") {
		did = true
		if err := emitFig(params.Figure3()); err != nil {
			return err
		}
	}
	if wantFig("ablation-window") {
		did = true
		if err := emitFig(params.AblationWindow(ablationWindows)); err != nil {
			return err
		}
	}
	if wantFig("ablation-latches") {
		did = true
		if err := emitFig(params.AblationLatches()); err != nil {
			return err
		}
	}
	if wantFig("ablation-models") {
		did = true
		fig, err := params.AblationModels()
		if err != nil {
			return err
		}
		// E9's deliverable is the class breakdown, so -csv emits it
		// (including the per-series unsafeness column) rather than the
		// unsafeness-only figure matrix; -json carries everything.
		switch {
		case *jsonOut:
			if err := emitFig(fig, nil); err != nil {
				return err
			}
		case *csv:
			fmt.Print(report.ClassBreakdownCSV(fig))
		default:
			if err := emitFig(fig, nil); err != nil {
				return err
			}
			fmt.Print(report.ClassBreakdown(fig))
		}
	}
	if wantFig("early-stop") {
		did = true
		res, err := params.AblationEarlyStop()
		if err != nil {
			return err
		}
		// E10's deliverable is the savings table (runs/cycles saved vs
		// estimate drift); -csv emits it for plotting pipelines.
		switch {
		case *jsonOut:
			s, err := report.JSONValue(res)
			if err != nil {
				return err
			}
			fmt.Print(s)
		case *csv:
			fmt.Print(report.EarlyStopCSV(res))
		default:
			fmt.Print(report.EarlyStop(res))
		}
	}
	if wantFig("pruning") {
		did = true
		res, err := params.AblationPruning()
		if err != nil {
			return err
		}
		// E11's deliverable is the full-vs-dead-vs-classes savings
		// table (cycles, wall time, drift on both levels).
		switch {
		case *jsonOut:
			s, err := report.JSONValue(res)
			if err != nil {
				return err
			}
			fmt.Print(s)
		case *csv:
			fmt.Print(report.PruningCSV(res))
		default:
			fmt.Print(report.Pruning(res))
		}
	}
	if wantFig("avf") {
		did = true
		res, err := params.ExperimentAVF()
		if err != nil {
			return err
		}
		// E12's deliverable is the AVF-vs-FI table (estimates, intervals,
		// masking gap and differential verdicts on both levels).
		switch {
		case *jsonOut:
			s, err := report.JSONValue(res)
			if err != nil {
				return err
			}
			fmt.Print(s)
		case *csv:
			fmt.Print(report.AvfCSV(res))
		default:
			fmt.Print(report.Avf(res))
		}
	}
	if wantFig("protection") {
		did = true
		res, err := params.ExperimentProtection()
		if err != nil {
			return err
		}
		// E13's deliverable is the protection-ROI table (class splits,
		// per-kilobit ROI, and the parity-vs-stuck-at blind spot).
		switch {
		case *jsonOut:
			s, err := report.JSONValue(res)
			if err != nil {
				return err
			}
			fmt.Print(s)
		case *csv:
			fmt.Print(report.ProtectionCSV(res))
		default:
			fmt.Print(report.Protection(res))
		}
	}
	if !did {
		fs.Usage()
		return fmt.Errorf("nothing selected: pass -table, -fig or -all")
	}
	return nil
}
