// Command paper regenerates every table and figure of the paper's
// evaluation section:
//
//	paper -table 1                 TABLE I (configuration)
//	paper -table 2                 TABLE II (throughput + ratio)
//	paper -table sample            §IV sample-size formulation
//	paper -fig 1                   Fig. 1 (register file, pinout OP)
//	paper -fig 2                   Fig. 2 (L1D, pinout OP)
//	paper -fig 3                   Fig. 3 (L1D AVF, software OP)
//	paper -fig ablation-window     window-length sweep (E8)
//	paper -fig ablation-latches    RTL-only latch injection (E7)
//	paper -all                     everything above
//
// Use -injections 4000 for the paper's full Leveugle sample (slow); the
// default keeps a complete regeneration laptop-scale.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/core"
	"repro/internal/report"
	"repro/internal/stats"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "paper:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("paper", flag.ContinueOnError)
	var (
		table      = fs.String("table", "", "regenerate a table: 1, 2 or sample")
		figure     = fs.String("fig", "", "regenerate a figure: 1, 2, 3, ablation-window, ablation-latches")
		all        = fs.Bool("all", false, "regenerate every table and figure")
		injections = fs.Int("injections", 0, "statistical sample size per campaign (default 400; paper: 4000)")
		seed       = fs.Int64("seed", 1, "campaign RNG seed")
		window     = fs.Uint64("window", 0, "pinout observation window in cycles (default 500, the scaled 20k)")
		workers    = fs.Int("workers", 0, "parallel campaign workers (default GOMAXPROCS)")
		benches    = fs.String("benches", "", "comma-separated benchmark subset")
		csv        = fs.Bool("csv", false, "emit figures as CSV instead of tables")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	params := core.DefaultParams()
	if *injections > 0 {
		params.Injections = *injections
	}
	params.Seed = *seed
	if *window > 0 {
		params.Window = *window
	}
	params.Workers = *workers
	if *benches != "" {
		params.Benches = strings.Split(*benches, ",")
	}

	emitFig := func(fig *core.FigureResult, err error) error {
		if err != nil {
			return err
		}
		if *csv {
			fmt.Print(report.FigureCSV(fig))
		} else {
			fmt.Print(report.Figure(fig))
		}
		return nil
	}

	did := false
	wantTable := func(name string) bool { return *all || *table == name }
	wantFig := func(name string) bool { return *all || *figure == name }

	if wantTable("1") {
		did = true
		fmt.Println(report.TableI(core.DefaultSetup()))
	}
	if wantTable("sample") {
		did = true
		n, err := stats.LeveugleSampleSize(0, 0.02, 0.99)
		if err != nil {
			return err
		}
		fmt.Printf("== Statistical sample (Leveugle et al.) ==\n\n")
		fmt.Printf("error margin 2%%, confidence 99%%  ->  n = %d (paper rounds to 4000)\n", n)
		fmt.Printf("this run uses n = %d per campaign\n\n", params.Injections)
	}
	if wantTable("2") {
		did = true
		rows, avg, err := params.Table2()
		if err != nil {
			return err
		}
		fmt.Println(report.TableII(rows, avg))
	}
	if wantFig("1") {
		did = true
		if err := emitFig(params.Figure1()); err != nil {
			return err
		}
	}
	if wantFig("2") {
		did = true
		if err := emitFig(params.Figure2()); err != nil {
			return err
		}
	}
	if wantFig("3") {
		did = true
		if err := emitFig(params.Figure3()); err != nil {
			return err
		}
	}
	if wantFig("ablation-window") {
		did = true
		if err := emitFig(params.AblationWindow([]uint64{100, 500, 2_000, 20_000, 0})); err != nil {
			return err
		}
	}
	if wantFig("ablation-latches") {
		did = true
		if err := emitFig(params.AblationLatches()); err != nil {
			return err
		}
	}
	if !did {
		fs.Usage()
		return fmt.Errorf("nothing selected: pass -table, -fig or -all")
	}
	return nil
}
