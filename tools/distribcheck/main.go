// Command distribcheck is the CI integration check for the distributed
// campaign service: it runs a tiny E2-style campaign (L1D transients at
// the core pinout, windowed) single-process, then boots one faultsimd
// coordinator and two faultsimd worker PROCESSES, submits the same
// campaign through the HTTP API, SIGKILLs one worker mid-run — forcing
// lease expiry and shard re-issue — and asserts the fleet's final
// classification counts and rendered report are byte-identical to the
// single-process run.
//
// It also exercises the observability surface end to end: the
// coordinator's /metrics endpoint is scraped mid-run (while shards are
// in flight) and after completion, the surviving worker's -metrics
// listener is scraped at the end, and the check asserts the key series
// are present and consistent — the lease-latency histogram, the
// golden-cache hit/miss counters, at least one shard retry (the killed
// worker's lease), leases issued >= shards done, and a non-zero
// worker-side shard count.
//
//	go build -o /tmp/faultsimd ./cmd/faultsimd
//	go run ./tools/distribcheck -bin /tmp/faultsimd
package main

import (
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/exec"
	"reflect"
	"strconv"
	"strings"
	"time"

	"flag"

	"repro/internal/campaign"
	"repro/internal/core"
	"repro/internal/distrib"
	"repro/internal/fault"
	"repro/internal/report"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "distribcheck: FAIL:", err)
		os.Exit(1)
	}
	fmt.Println("distribcheck: PASS")
}

func run() error {
	var (
		bin        = flag.String("bin", "", "path to the faultsimd binary")
		benchName  = flag.String("bench", "qsort", "workload of the check campaign")
		injections = flag.Int("n", 90, "injections of the check campaign")
		killAfter  = flag.Int("kill-after", 8, "worker replays after which one worker is SIGKILLed")
	)
	flag.Parse()
	if *bin == "" {
		return fmt.Errorf("-bin is required (build it with: go build -o /tmp/faultsimd ./cmd/faultsimd)")
	}

	cfg := campaign.Config{
		Injections: *injections, Seed: 21, Target: fault.TargetL1D,
		Obs: campaign.ObsPinout, Window: 2_000,
	}
	fmt.Printf("distribcheck: single-process reference (%s, n=%d)\n", *benchName, cfg.Injections)
	want, err := core.RunCampaign(*benchName, core.ModelMicroarch, core.CampaignSetup(), cfg)
	if err != nil {
		return err
	}

	// ------------------------------------------------ real fleet
	port, err := freePort()
	if err != nil {
		return err
	}
	url := fmt.Sprintf("http://127.0.0.1:%d", port)
	coord := exec.Command(*bin,
		"-role", "coordinator",
		"-listen", fmt.Sprintf("127.0.0.1:%d", port),
		"-lease-ttl", "2s", "-shard-size", "8")
	coord.Stdout, coord.Stderr = os.Stderr, os.Stderr
	if err := coord.Start(); err != nil {
		return fmt.Errorf("start coordinator: %w", err)
	}
	defer func() {
		coord.Process.Kill()
		coord.Wait()
	}()
	if err := waitHealthy(url, 15*time.Second); err != nil {
		return err
	}

	// Worker 1 survives to the end; give it a -metrics listener so the
	// worker-side series can be scraped after the campaign completes.
	wmPort, err := freePort()
	if err != nil {
		return err
	}
	workerMetricsURL := fmt.Sprintf("http://127.0.0.1:%d", wmPort)
	workers := make([]*exec.Cmd, 2)
	for i := range workers {
		wargs := []string{
			"-role", "worker", "-coordinator", url,
			"-id", fmt.Sprintf("ci-w%d", i),
			"-workers", "2", "-poll", "100ms"}
		if i == 1 {
			wargs = append(wargs, "-metrics", fmt.Sprintf("127.0.0.1:%d", wmPort))
		}
		w := exec.Command(*bin, wargs...)
		w.Stdout, w.Stderr = os.Stderr, os.Stderr
		if err := w.Start(); err != nil {
			return fmt.Errorf("start worker %d: %w", i, err)
		}
		workers[i] = w
	}
	defer func() {
		for _, w := range workers {
			if w.Process != nil {
				w.Process.Kill()
				w.Wait()
			}
		}
	}()

	client := distrib.NewClient(url)
	client.Poll = 100 * time.Millisecond
	id, err := client.Submit(distrib.CampaignSpec{
		Workload: *benchName, Model: "microarch", Config: cfg,
	})
	if err != nil {
		return err
	}
	fmt.Printf("distribcheck: campaign %s submitted to %s\n", id, url)

	// SIGKILL worker 0 once replays are flowing.
	killed := false
	deadline := time.Now().Add(10 * time.Minute)
	for {
		p, err := client.Progress(id)
		if err != nil {
			return err
		}
		if !killed && p.Replayed >= *killAfter {
			fmt.Printf("distribcheck: SIGKILLing worker 0 at %d replays\n", p.Replayed)
			if err := workers[0].Process.Kill(); err != nil {
				return fmt.Errorf("kill worker 0: %w", err)
			}
			workers[0].Wait()
			killed = true
			// Mid-run scrape: the coordinator must serve valid
			// Prometheus text while shards are still in flight.
			mid, err := scrape(url + "/metrics")
			if err != nil {
				return fmt.Errorf("mid-run /metrics scrape: %w", err)
			}
			if _, ok := mid["distrib_leases_issued_total"]; !ok {
				return fmt.Errorf("mid-run /metrics missing distrib_leases_issued_total")
			}
			fmt.Printf("distribcheck: mid-run scrape ok (%d series, %.0f leases issued)\n",
				len(mid), mid["distrib_leases_issued_total"])
		}
		if p.Status == distrib.StatusDone {
			break
		}
		if p.Status == distrib.StatusFailed {
			return fmt.Errorf("campaign failed: %s", p.Error)
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("campaign did not finish in time (status %s, %d/%d delivered)",
				p.Status, p.Delivered, p.Injections)
		}
		time.Sleep(100 * time.Millisecond)
	}
	if !killed {
		// The campaign finished before the kill threshold: the check
		// would silently not exercise re-leasing, so fail loudly —
		// lower -kill-after or raise -n instead.
		return fmt.Errorf("campaign finished before any worker was killed; raise -n or lower -kill-after")
	}
	got, err := client.Report(id)
	if err != nil {
		return err
	}

	if err := checkMetrics(url, workerMetricsURL); err != nil {
		return err
	}

	// -------------------------------------------------- comparison
	for _, r := range []*campaign.Result{want, got} {
		r.Elapsed, r.AvgSecPerRun, r.GoldenElapsed = 0, 0, 0
		r.Config.Workers = 0
	}
	if !reflect.DeepEqual(want.Counts, got.Counts) {
		return fmt.Errorf("classification counts diverged:\n got %v\nwant %v", got.Counts, want.Counts)
	}
	if !reflect.DeepEqual(want, got) {
		return fmt.Errorf("distributed result diverged from single-process:\n got %+v\nwant %+v", got, want)
	}
	gr := report.Campaign("check", got)
	wr := report.Campaign("check", want)
	if gr != wr {
		return fmt.Errorf("report tables diverged:\n got:\n%s\nwant:\n%s", gr, wr)
	}
	fmt.Printf("distribcheck: fleet result byte-identical across %d outcomes (counts %v)\n",
		len(got.Outcomes), got.Counts)
	return nil
}

// checkMetrics asserts the fleet's observability series after the
// campaign: coordinator lease/cache/retry accounting and the surviving
// worker's shard counters.
func checkMetrics(coordURL, workerURL string) error {
	cm, err := scrape(coordURL + "/metrics")
	if err != nil {
		return fmt.Errorf("coordinator /metrics: %w", err)
	}
	if _, ok := cm[`distrib_lease_latency_seconds_bucket{le="+Inf"}`]; !ok {
		return fmt.Errorf("coordinator /metrics missing the lease-latency histogram")
	}
	hits, misses := cm["distrib_golden_cache_hits_total"], cm["distrib_golden_cache_misses_total"]
	if hits+misses == 0 {
		return fmt.Errorf("coordinator /metrics: golden cache saw no traffic (hits %v, misses %v)", hits, misses)
	}
	if cm["distrib_shard_retries_total"] < 1 {
		return fmt.Errorf("coordinator /metrics: no shard retry recorded despite the killed worker")
	}
	issued, done := cm["distrib_leases_issued_total"], cm["distrib_shards_done_total"]
	if issued < done || done == 0 {
		return fmt.Errorf("coordinator /metrics: leases issued %v < shards done %v (or none done)", issued, done)
	}
	wm, err := scrape(workerURL + "/metrics")
	if err != nil {
		return fmt.Errorf("worker /metrics: %w", err)
	}
	if wm["worker_shards_total"] == 0 {
		return fmt.Errorf("worker /metrics: worker_shards_total is 0")
	}
	if wm["worker_golden_prep_seconds_count"] == 0 {
		return fmt.Errorf("worker /metrics: no golden preparation recorded")
	}
	fmt.Printf("distribcheck: metrics ok (leases %v >= shards done %v, retries %v, cache %v hit / %v miss, worker shards %v)\n",
		issued, done, cm["distrib_shard_retries_total"], hits, misses, wm["worker_shards_total"])
	return nil
}

// scrape fetches a /metrics endpoint and parses the Prometheus text
// exposition into series -> value (labels kept verbatim in the key).
func scrape(url string) (map[string]float64, error) {
	resp, err := http.Get(url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("GET %s: %d", url, resp.StatusCode)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	out := make(map[string]float64)
	for _, line := range strings.Split(string(body), "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			return nil, fmt.Errorf("bad exposition line %q", line)
		}
		v, err := strconv.ParseFloat(line[sp+1:], 64)
		if err != nil {
			return nil, fmt.Errorf("bad value in line %q: %w", line, err)
		}
		out[line[:sp]] = v
	}
	return out, nil
}

func freePort() (int, error) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return 0, err
	}
	defer l.Close()
	return l.Addr().(*net.TCPAddr).Port, nil
}

func waitHealthy(url string, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		resp, err := http.Get(url + "/api/v1/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return nil
			}
		}
		time.Sleep(100 * time.Millisecond)
	}
	return fmt.Errorf("coordinator at %s never became healthy", url)
}
