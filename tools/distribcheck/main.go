// Command distribcheck is the CI integration check for the distributed
// campaign service: it runs a tiny E2-style campaign (L1D transients at
// the core pinout, windowed) single-process, then boots one faultsimd
// coordinator and two faultsimd worker PROCESSES, submits the same
// campaign through the HTTP API, SIGKILLs one worker mid-run — forcing
// lease expiry and shard re-issue — and asserts the fleet's final
// classification counts and rendered report are byte-identical to the
// single-process run.
//
//	go build -o /tmp/faultsimd ./cmd/faultsimd
//	go run ./tools/distribcheck -bin /tmp/faultsimd
package main

import (
	"fmt"
	"net"
	"net/http"
	"os"
	"os/exec"
	"reflect"
	"time"

	"flag"

	"repro/internal/campaign"
	"repro/internal/core"
	"repro/internal/distrib"
	"repro/internal/fault"
	"repro/internal/report"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "distribcheck: FAIL:", err)
		os.Exit(1)
	}
	fmt.Println("distribcheck: PASS")
}

func run() error {
	var (
		bin        = flag.String("bin", "", "path to the faultsimd binary")
		benchName  = flag.String("bench", "qsort", "workload of the check campaign")
		injections = flag.Int("n", 90, "injections of the check campaign")
		killAfter  = flag.Int("kill-after", 8, "worker replays after which one worker is SIGKILLed")
	)
	flag.Parse()
	if *bin == "" {
		return fmt.Errorf("-bin is required (build it with: go build -o /tmp/faultsimd ./cmd/faultsimd)")
	}

	cfg := campaign.Config{
		Injections: *injections, Seed: 21, Target: fault.TargetL1D,
		Obs: campaign.ObsPinout, Window: 2_000,
	}
	fmt.Printf("distribcheck: single-process reference (%s, n=%d)\n", *benchName, cfg.Injections)
	want, err := core.RunCampaign(*benchName, core.ModelMicroarch, core.CampaignSetup(), cfg)
	if err != nil {
		return err
	}

	// ------------------------------------------------ real fleet
	port, err := freePort()
	if err != nil {
		return err
	}
	url := fmt.Sprintf("http://127.0.0.1:%d", port)
	coord := exec.Command(*bin,
		"-role", "coordinator",
		"-listen", fmt.Sprintf("127.0.0.1:%d", port),
		"-lease-ttl", "2s", "-shard-size", "8")
	coord.Stdout, coord.Stderr = os.Stderr, os.Stderr
	if err := coord.Start(); err != nil {
		return fmt.Errorf("start coordinator: %w", err)
	}
	defer func() {
		coord.Process.Kill()
		coord.Wait()
	}()
	if err := waitHealthy(url, 15*time.Second); err != nil {
		return err
	}

	workers := make([]*exec.Cmd, 2)
	for i := range workers {
		w := exec.Command(*bin,
			"-role", "worker", "-coordinator", url,
			"-id", fmt.Sprintf("ci-w%d", i),
			"-workers", "2", "-poll", "100ms")
		w.Stdout, w.Stderr = os.Stderr, os.Stderr
		if err := w.Start(); err != nil {
			return fmt.Errorf("start worker %d: %w", i, err)
		}
		workers[i] = w
	}
	defer func() {
		for _, w := range workers {
			if w.Process != nil {
				w.Process.Kill()
				w.Wait()
			}
		}
	}()

	client := distrib.NewClient(url)
	client.Poll = 100 * time.Millisecond
	id, err := client.Submit(distrib.CampaignSpec{
		Workload: *benchName, Model: "microarch", Config: cfg,
	})
	if err != nil {
		return err
	}
	fmt.Printf("distribcheck: campaign %s submitted to %s\n", id, url)

	// SIGKILL worker 0 once replays are flowing.
	killed := false
	deadline := time.Now().Add(10 * time.Minute)
	for {
		p, err := client.Progress(id)
		if err != nil {
			return err
		}
		if !killed && p.Replayed >= *killAfter {
			fmt.Printf("distribcheck: SIGKILLing worker 0 at %d replays\n", p.Replayed)
			if err := workers[0].Process.Kill(); err != nil {
				return fmt.Errorf("kill worker 0: %w", err)
			}
			workers[0].Wait()
			killed = true
		}
		if p.Status == distrib.StatusDone {
			break
		}
		if p.Status == distrib.StatusFailed {
			return fmt.Errorf("campaign failed: %s", p.Error)
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("campaign did not finish in time (status %s, %d/%d delivered)",
				p.Status, p.Delivered, p.Injections)
		}
		time.Sleep(100 * time.Millisecond)
	}
	if !killed {
		// The campaign finished before the kill threshold: the check
		// would silently not exercise re-leasing, so fail loudly —
		// lower -kill-after or raise -n instead.
		return fmt.Errorf("campaign finished before any worker was killed; raise -n or lower -kill-after")
	}
	got, err := client.Report(id)
	if err != nil {
		return err
	}

	// -------------------------------------------------- comparison
	for _, r := range []*campaign.Result{want, got} {
		r.Elapsed, r.AvgSecPerRun, r.GoldenElapsed = 0, 0, 0
		r.Config.Workers = 0
	}
	if !reflect.DeepEqual(want.Counts, got.Counts) {
		return fmt.Errorf("classification counts diverged:\n got %v\nwant %v", got.Counts, want.Counts)
	}
	if !reflect.DeepEqual(want, got) {
		return fmt.Errorf("distributed result diverged from single-process:\n got %+v\nwant %+v", got, want)
	}
	gr := report.Campaign("check", got)
	wr := report.Campaign("check", want)
	if gr != wr {
		return fmt.Errorf("report tables diverged:\n got:\n%s\nwant:\n%s", gr, wr)
	}
	fmt.Printf("distribcheck: fleet result byte-identical across %d outcomes (counts %v)\n",
		len(got.Outcomes), got.Counts)
	return nil
}

func freePort() (int, error) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return 0, err
	}
	defer l.Close()
	return l.Addr().(*net.TCPAddr).Port, nil
}

func waitHealthy(url string, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		resp, err := http.Get(url + "/api/v1/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return nil
			}
		}
		time.Sleep(100 * time.Millisecond)
	}
	return fmt.Errorf("coordinator at %s never became healthy", url)
}
