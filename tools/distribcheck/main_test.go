package main

import (
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

// TestFreePort: the port the helper hands out must actually be bindable
// — the coordinator boots on it immediately afterwards.
func TestFreePort(t *testing.T) {
	port, err := freePort()
	if err != nil {
		t.Fatal(err)
	}
	if port <= 0 || port > 65535 {
		t.Fatalf("port %d out of range", port)
	}
	l, err := net.Listen("tcp", fmt.Sprintf("127.0.0.1:%d", port))
	if err != nil {
		t.Fatalf("handed-out port %d not bindable: %v", port, err)
	}
	l.Close()
}

// TestWaitHealthy pins the coordinator-readiness probe: it must accept a
// server only once /api/v1/healthz answers 200, keep polling through
// early failures, and report a timeout against a dead endpoint.
func TestWaitHealthy(t *testing.T) {
	ready := make(chan struct{})
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/api/v1/healthz" {
			http.NotFound(w, r)
			return
		}
		select {
		case <-ready:
			w.WriteHeader(http.StatusOK)
		default:
			// Booting: the probe must retry, not give up.
			w.WriteHeader(http.StatusServiceUnavailable)
		}
	}))
	defer srv.Close()

	if err := waitHealthy(srv.URL, 300*time.Millisecond); err == nil {
		t.Error("unhealthy coordinator accepted")
	}
	close(ready)
	if err := waitHealthy(srv.URL, 5*time.Second); err != nil {
		t.Errorf("healthy coordinator rejected: %v", err)
	}

	port, err := freePort()
	if err != nil {
		t.Fatal(err)
	}
	dead := fmt.Sprintf("http://127.0.0.1:%d", port)
	if err := waitHealthy(dead, 300*time.Millisecond); err == nil {
		t.Error("dead endpoint accepted")
	}
}
