// Command docscheck is the CI docs-integrity gate: it fails when any
// package under internal/ or cmd/ lacks a package-level doc comment,
// so the documentation layer cannot silently rot as packages are added.
//
//	go run ./tools/docscheck
package main

import (
	"fmt"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

func main() {
	roots := os.Args[1:]
	if len(roots) == 0 {
		roots = []string{"internal", "cmd"}
	}
	var missing []string
	for _, root := range roots {
		err := filepath.WalkDir(root, func(dir string, d fs.DirEntry, err error) error {
			if err != nil || !d.IsDir() {
				return err
			}
			ok, checked, err := packageHasDoc(dir)
			if err != nil {
				return fmt.Errorf("%s: %w", dir, err)
			}
			if checked && !ok {
				missing = append(missing, dir)
			}
			return nil
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "docscheck:", err)
			os.Exit(1)
		}
	}
	if len(missing) > 0 {
		sort.Strings(missing)
		fmt.Fprintln(os.Stderr, "docscheck: packages without a package doc comment:")
		for _, dir := range missing {
			fmt.Fprintln(os.Stderr, "  "+dir)
		}
		os.Exit(1)
	}
}

// packageHasDoc reports whether the non-test package in dir carries a
// doc comment on at least one of its files. checked is false when the
// directory holds no non-test Go files (nothing to enforce).
func packageHasDoc(dir string) (ok, checked bool, err error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false, false, err
	}
	fset := token.NewFileSet()
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		checked = true
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.PackageClauseOnly)
		if err != nil {
			return false, true, err
		}
		if f.Doc != nil && strings.TrimSpace(f.Doc.Text()) != "" {
			return true, true, nil
		}
	}
	return false, checked, nil
}
