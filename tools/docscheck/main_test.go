package main

import (
	"os"
	"path/filepath"
	"testing"
)

func writeDir(t *testing.T, files map[string]string) string {
	t.Helper()
	dir := t.TempDir()
	for name, src := range files {
		if err := os.WriteFile(filepath.Join(dir, name), []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

// TestPackageHasDoc pins the docs-integrity gate's per-directory
// decision: what counts as documented, what counts as checkable at all,
// and that test files can neither satisfy nor trigger the gate.
func TestPackageHasDoc(t *testing.T) {
	cases := []struct {
		name        string
		files       map[string]string
		ok, checked bool
	}{
		{
			name:  "documented package",
			files: map[string]string{"a.go": "// Package a does things.\npackage a\n"},
			ok:    true, checked: true,
		},
		{
			name: "doc on any one file suffices",
			files: map[string]string{
				"a.go": "package a\n",
				"b.go": "// Package a, documented here.\npackage a\n",
			},
			ok: true, checked: true,
		},
		{
			name:  "undocumented package",
			files: map[string]string{"a.go": "package a\n"},
			ok:    false, checked: true,
		},
		{
			name:  "blank comment is not a doc",
			files: map[string]string{"a.go": "//\npackage a\n"},
			ok:    false, checked: true,
		},
		{
			name:  "test files cannot satisfy the gate",
			files: map[string]string{"a_test.go": "// Package a docs in a test file only.\npackage a\n"},
			ok:    false, checked: false,
		},
		{
			name:  "no Go files: nothing to enforce",
			files: map[string]string{"README.md": "prose\n"},
			ok:    false, checked: false,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			ok, checked, err := packageHasDoc(writeDir(t, tc.files))
			if err != nil {
				t.Fatal(err)
			}
			if ok != tc.ok || checked != tc.checked {
				t.Errorf("packageHasDoc = (ok %v, checked %v), want (ok %v, checked %v)",
					ok, checked, tc.ok, tc.checked)
			}
		})
	}
}

// TestPackageHasDocErrors: unparsable sources and missing directories
// must surface as errors, not pass silently.
func TestPackageHasDocErrors(t *testing.T) {
	if _, _, err := packageHasDoc(filepath.Join(t.TempDir(), "missing")); err == nil {
		t.Error("missing directory accepted")
	}
	dir := writeDir(t, map[string]string{"bad.go": "pack age a\n"})
	if _, checked, err := packageHasDoc(dir); err == nil || !checked {
		t.Errorf("unparsable file: err = %v, checked = %v; want parse error on a checked dir", err, checked)
	}
}
