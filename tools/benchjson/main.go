// Command benchjson emits the campaign-engine performance baseline as
// machine-readable JSON (BENCH_campaign.json): differential-replay
// throughput on both abstraction levels, full-sweep wall time for a
// miniature matrix, and the adaptive engine's measured savings on a
// run-to-end campaign (simulated-cycle reduction and estimate drift vs
// the fixed plan). CI runs it on every push so future changes to the
// hot path have a trajectory to compare against:
//
//	go run ./tools/benchjson -out BENCH_campaign.json
//
// This file is the canonical source of BENCH_campaign.json. The
// benchmarks in bench_test.go cover the same paths in Go-benchmark
// form (b.N loops, per-op metrics) at deliberately different sample
// sizes; comparisons belong within one source, never across the two.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"math/rand"
	"os"
	"time"

	"repro/internal/asm"
	"repro/internal/bench"
	"repro/internal/campaign"
	"repro/internal/core"
	"repro/internal/fault"
)

// Baseline is the emitted document.
type Baseline struct {
	GeneratedBy string        `json:"generatedBy"`
	Replay      []ReplayPoint `json:"replay"`
	Sweep       SweepPoint    `json:"sweep"`
	EarlyStop   EarlyStop     `json:"earlyStop"`
}

// ReplayPoint is the oneRun replay-throughput measurement for one model.
type ReplayPoint struct {
	Model        string  `json:"model"`
	Replays      int     `json:"replays"`
	ReplaysPerS  float64 `json:"replaysPerSec"`
	MCyclesPerS  float64 `json:"mcyclesPerSec"`
	GoldenCycles uint64  `json:"goldenCycles"`
}

// SweepPoint is the miniature full-sweep wall-time measurement.
type SweepPoint struct {
	Campaigns  int     `json:"campaigns"`
	Injections int     `json:"injections"`
	GoldenRuns int     `json:"goldenRuns"`
	WallSec    float64 `json:"wallSec"`
}

// EarlyStop compares the fixed-plan and adaptive engines on the same
// run-to-end campaign.
type EarlyStop struct {
	Workload        string  `json:"workload"`
	Injections      int     `json:"injections"`
	FixedMCycles    float64 `json:"fixedMcycles"`
	AdaptiveMCycles float64 `json:"adaptiveMcycles"`
	SavedFrac       float64 `json:"savedFrac"`
	Converged       int     `json:"converged"`
	RunsSaved       int     `json:"runsSaved"`
	Drift           float64 `json:"unsafenessDrift"`
	Margin          float64 `json:"achievedMargin"`
}

func main() {
	out := flag.String("out", "BENCH_campaign.json", "output path")
	flag.Parse()
	if err := run(*out); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

func run(out string) error {
	doc := Baseline{GeneratedBy: "tools/benchjson"}

	for _, tc := range []struct {
		model   core.Model
		replays int
	}{
		{core.ModelMicroarch, 120},
		{core.ModelRTL, 25},
	} {
		pt, err := measureReplay(tc.model, tc.replays)
		if err != nil {
			return err
		}
		doc.Replay = append(doc.Replay, pt)
	}

	sw, err := measureSweep()
	if err != nil {
		return err
	}
	doc.Sweep = sw

	es, err := measureEarlyStop()
	if err != nil {
		return err
	}
	doc.EarlyStop = es

	buf, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(out, append(buf, '\n'), 0o644)
}

func measureReplay(m core.Model, n int) (ReplayPoint, error) {
	prog, err := workload("qsort")
	if err != nil {
		return ReplayPoint{}, err
	}
	factory := core.Factory(m, prog, core.CampaignSetup())
	g, err := campaign.PrepareGolden(factory, campaign.GoldenOptions{})
	if err != nil {
		return ReplayPoint{}, err
	}
	sim, err := factory()
	if err != nil {
		return ReplayPoint{}, err
	}
	cfg := campaign.Config{
		Injections: 1, Seed: 1, Target: fault.TargetRF,
		Obs: campaign.ObsPinout, Window: 500,
	}
	specs, err := fault.Plan(n, cfg.Target, sim.Bits(cfg.Target), g.Cycles,
		fault.DistNormal, cfg.Fault, rand.New(rand.NewSource(1)))
	if err != nil {
		return ReplayPoint{}, err
	}
	var cycles uint64
	start := time.Now()
	for _, s := range specs {
		oc, err := g.ReplayOne(sim, s, cfg)
		if err != nil {
			return ReplayPoint{}, err
		}
		cycles += oc.EndCycle - s.Cycle
	}
	el := time.Since(start).Seconds()
	return ReplayPoint{
		Model: m.String(), Replays: n,
		ReplaysPerS:  float64(n) / el,
		MCyclesPerS:  float64(cycles) / el / 1e6,
		GoldenCycles: g.Cycles,
	}, nil
}

func measureSweep() (SweepPoint, error) {
	prog, err := workload("qsort")
	if err != nil {
		return SweepPoint{}, err
	}
	factory := core.Factory(core.ModelMicroarch, prog, core.CampaignSetup())
	cfg := campaign.Config{
		Injections: 40, Seed: 1, Target: fault.TargetRF,
		Obs: campaign.ObsPinout, Window: 500,
	}
	l1d := cfg
	l1d.Target = fault.TargetL1D
	start := time.Now()
	sr, err := campaign.Sweep([]campaign.SweepCampaign{
		{Key: "rf", Group: "ma/qsort", Factory: factory, Config: cfg},
		{Key: "l1d", Group: "ma/qsort", Factory: factory, Config: l1d},
	}, campaign.SweepOptions{})
	if err != nil {
		return SweepPoint{}, err
	}
	return SweepPoint{
		Campaigns: 2, Injections: cfg.Injections * 2,
		GoldenRuns: sr.GoldenRuns, WallSec: time.Since(start).Seconds(),
	}, nil
}

func measureEarlyStop() (EarlyStop, error) {
	const bench = "caes"
	cfg := campaign.Config{
		Injections: 80, Seed: 5, Target: fault.TargetRF,
		Obs: campaign.ObsPinout,
	}
	fixed, err := core.RunCampaign(bench, core.ModelMicroarch, core.CampaignSetup(), cfg)
	if err != nil {
		return EarlyStop{}, err
	}
	cfg.EarlyStop = true
	adaptive, err := core.RunCampaign(bench, core.ModelMicroarch, core.CampaignSetup(), cfg)
	if err != nil {
		return EarlyStop{}, err
	}
	es := EarlyStop{
		Workload: bench, Injections: cfg.Injections,
		FixedMCycles:    float64(fixed.CyclesSimulated) / 1e6,
		AdaptiveMCycles: float64(adaptive.CyclesSimulated) / 1e6,
		Converged:       adaptive.ConvergedRuns,
		RunsSaved:       adaptive.RunsSaved,
		Drift:           math.Abs(adaptive.Unsafeness.P - fixed.Unsafeness.P),
		Margin:          adaptive.AchievedMargin,
	}
	if fixed.CyclesSimulated > 0 {
		es.SavedFrac = 1 - float64(adaptive.CyclesSimulated)/float64(fixed.CyclesSimulated)
	}
	return es, nil
}

func workload(name string) (*asm.Program, error) {
	w, err := bench.ByName(name)
	if err != nil {
		return nil, err
	}
	return w.Program()
}
