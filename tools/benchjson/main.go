// Command benchjson emits the campaign-engine performance baseline as
// machine-readable JSON (BENCH_campaign.json): differential-replay
// throughput on both abstraction levels, full-sweep wall time for a
// miniature matrix, the adaptive engine's measured savings on a
// run-to-end campaign (simulated-cycle reduction, sequential-stop runs
// saved and estimate drift vs the fixed plan), golden-trace pruning's
// simulated-cycle reduction on both levels, the injection-locality
// cursor schedule's throughput and fast-forward elimination (model
// "replay-sched"), and the observability overhead arm — the same
// campaign with the metrics registry off and on, gated at 3% throughput
// loss. CI runs it on every push so future changes to the hot path have
// a trajectory to compare against:
//
//	go run ./tools/benchjson -out BENCH_campaign.json
//
// With -baseline it additionally gates against a committed baseline:
// the run fails when replay throughput (replaysPerSec, mcyclesPerSec)
// regresses by more than -max-regression (default 25%) on any model —
// the CI perf-regression gate:
//
//	go run ./tools/benchjson -out BENCH_campaign.new.json -baseline BENCH_campaign.json
//
// The baseline is absolute throughput, so it carries the hardware it
// was measured on; the 25% default absorbs normal runner noise, but a
// change of CI hardware class shows up as a gate failure — regenerate
// and commit a fresh BENCH_campaign.json from the new reference
// machine (or widen -max-regression) when that happens.
//
// This file is the canonical source of BENCH_campaign.json. The
// benchmarks in bench_test.go cover the same paths in Go-benchmark
// form (b.N loops, per-op metrics) at deliberately different sample
// sizes; comparisons belong within one source, never across the two.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"math/rand"
	"os"
	"time"

	"repro/internal/asm"
	"repro/internal/bench"
	"repro/internal/campaign"
	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/obs"
)

// Baseline is the emitted document.
type Baseline struct {
	GeneratedBy string           `json:"generatedBy"`
	Replay      []ReplayPoint    `json:"replay"`
	Sweep       SweepPoint       `json:"sweep"`
	EarlyStop   EarlyStop        `json:"earlyStop"`
	Pruning     []PruningPoint   `json:"pruning"`
	AvfPrior    AvfPriorPoint    `json:"avfPrior"`
	ReplaySched ReplaySchedPoint `json:"replaySched"`
	Protection  ProtectionPoint  `json:"protection"`
	ObsOverhead ObsOverheadPoint `json:"obsOverhead"`
}

// ObsOverheadPoint measures what enabling the metrics registry costs
// the engine hot path: the same campaign run with observability off and
// on, best-of-3 per arm with the arms interleaved to damp scheduler
// noise. overheadFrac is the fractional throughput loss of the enabled
// arm; with -baseline set the run fails when it exceeds 3%, which pins
// the registry's allocation-free atomic-counter design in CI. Baselines
// predating the arm carry a zero-valued point and the gate still
// applies (it compares the two same-run arms, not the baseline).
type ObsOverheadPoint struct {
	Workload     string  `json:"workload"`
	Injections   int     `json:"injections"`
	PlainRPS     float64 `json:"plainReplaysPerSec"`
	ObsRPS       float64 `json:"obsReplaysPerSec"`
	OverheadFrac float64 `json:"overheadFrac"`
}

// ReplayPoint is the oneRun replay-throughput measurement for one model.
type ReplayPoint struct {
	Model        string  `json:"model"`
	Replays      int     `json:"replays"`
	ReplaysPerS  float64 `json:"replaysPerSec"`
	MCyclesPerS  float64 `json:"mcyclesPerSec"`
	GoldenCycles uint64  `json:"goldenCycles"`
}

// SweepPoint is the miniature full-sweep wall-time measurement.
type SweepPoint struct {
	Campaigns  int     `json:"campaigns"`
	Injections int     `json:"injections"`
	GoldenRuns int     `json:"goldenRuns"`
	WallSec    float64 `json:"wallSec"`
}

// EarlyStop compares the fixed-plan and adaptive engines on the same
// run-to-end campaign. The adaptive arm runs with sequential stopping
// enabled (a margin loose enough to trigger at this sample size), so
// runsSaved exercises — and reports — the statistical-stopping path,
// not just the convergence exit.
type EarlyStop struct {
	Workload        string  `json:"workload"`
	Injections      int     `json:"injections"`
	FixedMCycles    float64 `json:"fixedMcycles"`
	AdaptiveMCycles float64 `json:"adaptiveMcycles"`
	SavedFrac       float64 `json:"savedFrac"`
	Converged       int     `json:"converged"`
	RunsSaved       int     `json:"runsSaved"`
	Drift           float64 `json:"unsafenessDrift"`
	Margin          float64 `json:"achievedMargin"`
}

// PruningPoint compares the full engine against golden-trace pruning
// (dead-interval classification + MeRLiN-style class extrapolation) on
// one run-to-end campaign per abstraction level.
type PruningPoint struct {
	Model        string  `json:"model"`
	Workload     string  `json:"workload"`
	Injections   int     `json:"injections"`
	FullMCycles  float64 `json:"fullMcycles"`
	PruneMCycles float64 `json:"pruneMcycles"`
	Speedup      float64 `json:"mcycleSpeedup"` // full/pruned simulated cycles
	Pruned       int     `json:"pruned"`        // dead-classified, zero replay
	Extrapolated int     `json:"extrapolated"`  // class members inheriting their rep
	Classes      int     `json:"classes"`
	Drift        float64 `json:"unsafenessDrift"`
}

// AvfPriorPoint compares runs-to-margin of the same sequential-stopping
// campaign with and without the injection-free AVF prediction seeded as
// a prior. Both arms are deterministic at the fixed seed, so the
// -baseline gate pins the prior's saving exactly: a semantic change to
// the prior (or to sequential stopping under it) shows up as a gate
// failure, not a silent drift.
type AvfPriorPoint struct {
	Workload     string  `json:"workload"`
	Target       string  `json:"target"`
	Injections   int     `json:"injections"`
	TargetError  float64 `json:"targetError"`
	PredictedAVF float64 `json:"predictedAvf"`
	PlainRuns    int     `json:"plainRuns"` // runs to margin without the prior
	PriorRuns    int     `json:"priorRuns"` // runs to margin with it
	SavedFrac    float64 `json:"savedFrac"`
	Drift        float64 `json:"unsafenessDrift"`
}

// ProtectionPoint runs one protected register-file campaign (parity,
// pinout observation) at a fixed seed and records its deterministic
// class split — the extended plan size, the synthesised overhead-region
// faults and the Masked/DUE counts. Like avf-prior, every field is
// seed-pinned, so the -baseline gate compares the split exactly: a
// semantic change anywhere in the protection fold (word arity rule,
// overhead synthesis, DUE classification) shows up as a gate failure,
// not a silent drift. Baselines predating the arm carry a zero-valued
// point and the gate skips it.
type ProtectionPoint struct {
	Workload     string  `json:"workload"`
	Protect      string  `json:"protect"`
	Injections   int     `json:"injections"`
	DataBits     int     `json:"dataBits"`
	OverheadBits int     `json:"overheadBits"`
	Runs         int     `json:"runs"`
	OverheadRuns int     `json:"overheadRuns"`
	Masked       int     `json:"masked"`
	DUE          int     `json:"due"`
	Unsafeness   float64 `json:"unsafeness"`
}

// ReplaySchedPoint measures the injection-locality cursor schedule on
// the microarch model: the same 120-transient plan the scalar microarch
// arm replays in stream order, driven through one single-threaded
// CursorReplayer instead. streamFfMcycles is the golden fast-forward
// the stream order would pay (Σ instant − nearest snapshot),
// cursorFfMcycles is what the cursor actually stepped, and
// eliminatedMcycles is their difference — the same quantity a
// cursor-scheduled campaign reports as FastForwardSaved in
// report.Campaign, so the two artifacts reconcile directly. The arm's
// throughput is also appended to replay[] as model "replay-sched",
// which puts it under the -baseline regression gate.
type ReplaySchedPoint struct {
	Model             string  `json:"model"` // underlying simulation model
	Workload          string  `json:"workload"`
	Replays           int     `json:"replays"`
	ReplaysPerS       float64 `json:"replaysPerSec"`
	StreamFFMcycles   float64 `json:"streamFfMcycles"`
	CursorFFMcycles   float64 `json:"cursorFfMcycles"`
	EliminatedMcycles float64 `json:"eliminatedMcycles"`
	Forks             int     `json:"forks"`
	SpeedupVsStream   float64 `json:"speedupVsStream"` // vs this run's scalar microarch arm
}

func main() {
	out := flag.String("out", "BENCH_campaign.json", "output path")
	baseline := flag.String("baseline", "", "compare against this committed baseline and fail on regression")
	maxReg := flag.Float64("max-regression", 0.25, "tolerated fractional throughput regression vs -baseline")
	flag.Parse()
	if err := run(*out, *baseline, *maxReg); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

func run(out, baseline string, maxReg float64) error {
	doc := Baseline{GeneratedBy: "tools/benchjson"}

	for _, tc := range []struct {
		model   core.Model
		replays int
	}{
		{core.ModelMicroarch, 120},
		{core.ModelRTL, 25},
	} {
		pt, err := measureReplay(tc.model, tc.replays)
		if err != nil {
			return err
		}
		doc.Replay = append(doc.Replay, pt)
	}

	// The bit-parallel arm replays the same planned-fault shape through
	// the 64-lane lockstep engine; committed next to the scalar rtl
	// point, the baseline gate pins the batched speedup too.
	bp, err := measureReplayBatch(512)
	if err != nil {
		return err
	}
	doc.Replay = append(doc.Replay, bp)

	// The cursor-schedule arm replays the microarch arm's exact plan
	// through the injection-locality scheduler; its throughput point
	// lands in replay[] (model "replay-sched") so the -baseline gate
	// covers it, and the fast-forward elimination is reported alongside.
	sp, spt, err := measureReplaySched(doc.Replay[0])
	if err != nil {
		return err
	}
	doc.Replay = append(doc.Replay, sp)
	doc.ReplaySched = spt

	sw, err := measureSweep()
	if err != nil {
		return err
	}
	doc.Sweep = sw

	es, err := measureEarlyStop()
	if err != nil {
		return err
	}
	doc.EarlyStop = es

	for _, m := range []core.Model{core.ModelMicroarch, core.ModelRTL} {
		pp, err := measurePruning(m)
		if err != nil {
			return err
		}
		doc.Pruning = append(doc.Pruning, pp)
	}

	ap, err := measureAVFPrior()
	if err != nil {
		return err
	}
	doc.AvfPrior = ap

	pr, err := measureProtection()
	if err != nil {
		return err
	}
	doc.Protection = pr

	oo, err := measureObsOverhead()
	if err != nil {
		return err
	}
	doc.ObsOverhead = oo

	buf, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(out, append(buf, '\n'), 0o644); err != nil {
		return err
	}
	if baseline == "" {
		return nil
	}
	// The observability gate compares this run's two arms against each
	// other (no hardware dependence), so it rides the -baseline mode
	// flag rather than any baseline field.
	if doc.ObsOverhead.OverheadFrac > obsOverheadGate {
		return fmt.Errorf("metrics overhead %.1f%% exceeds the %.0f%% gate (plain %.1f replays/s, obs %.1f replays/s)",
			doc.ObsOverhead.OverheadFrac*100, obsOverheadGate*100,
			doc.ObsOverhead.PlainRPS, doc.ObsOverhead.ObsRPS)
	}
	return compareBaseline(doc, baseline, maxReg)
}

// compareBaseline is the CI perf-regression gate: replay throughput
// (replays/s and simulated Mcycles/s) must stay within maxReg of the
// committed baseline on every model.
func compareBaseline(doc Baseline, path string, maxReg float64) error {
	buf, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("baseline: %w", err)
	}
	var base Baseline
	if err := json.Unmarshal(buf, &base); err != nil {
		return fmt.Errorf("baseline %s: %w", path, err)
	}
	byModel := make(map[string]ReplayPoint, len(base.Replay))
	for _, pt := range base.Replay {
		byModel[pt.Model] = pt
	}
	var failures []string
	check := func(model, metric string, now, was float64) {
		if was <= 0 {
			return
		}
		if now < was*(1-maxReg) {
			failures = append(failures,
				fmt.Sprintf("%s %s regressed %.1f%% (%.2f -> %.2f, tolerance %.0f%%)",
					model, metric, (1-now/was)*100, was, now, maxReg*100))
		}
	}
	for _, pt := range doc.Replay {
		was, ok := byModel[pt.Model]
		if !ok {
			continue
		}
		check(pt.Model, "replaysPerSec", pt.ReplaysPerS, was.ReplaysPerS)
		check(pt.Model, "mcyclesPerSec", pt.MCyclesPerS, was.MCyclesPerS)
	}
	// The avf-prior arm is deterministic (fixed seed, no wall clock), so
	// it is gated without tolerance: the prior seeding must keep reaching
	// the margin in no more runs than the committed baseline records.
	if was := base.AvfPrior.PriorRuns; was > 0 && doc.AvfPrior.PriorRuns > was {
		failures = append(failures,
			fmt.Sprintf("avf-prior runs-to-margin regressed (%d -> %d of %d planned)",
				was, doc.AvfPrior.PriorRuns, doc.AvfPrior.Injections))
	}
	// The protected-campaign arm is deterministic at its fixed seed, so
	// its class split is gated exactly whenever the committed baseline
	// carries one (older baselines record a zero-valued point).
	if was := base.Protection; was.Runs > 0 {
		now := doc.Protection
		if now.Runs != was.Runs || now.OverheadRuns != was.OverheadRuns ||
			now.Masked != was.Masked || now.DUE != was.DUE {
			failures = append(failures, fmt.Sprintf(
				"protected-campaign split drifted (runs %d -> %d, overhead %d -> %d, masked %d -> %d, due %d -> %d)",
				was.Runs, now.Runs, was.OverheadRuns, now.OverheadRuns,
				was.Masked, now.Masked, was.DUE, now.DUE))
		}
	}
	if len(failures) > 0 {
		for _, f := range failures {
			fmt.Fprintln(os.Stderr, "benchjson: REGRESSION:", f)
		}
		return fmt.Errorf("%d perf regression(s) beyond the %.0f%% gate vs %s",
			len(failures), maxReg*100, path)
	}
	fmt.Printf("benchjson: within %.0f%% of baseline %s on every replay metric\n", maxReg*100, path)
	return nil
}

func measureReplay(m core.Model, n int) (ReplayPoint, error) {
	prog, err := workload("qsort")
	if err != nil {
		return ReplayPoint{}, err
	}
	factory := core.Factory(m, prog, core.CampaignSetup())
	g, err := campaign.PrepareGolden(factory, campaign.GoldenOptions{})
	if err != nil {
		return ReplayPoint{}, err
	}
	sim, err := factory()
	if err != nil {
		return ReplayPoint{}, err
	}
	cfg := campaign.Config{
		Injections: 1, Seed: 1, Target: fault.TargetRF,
		Obs: campaign.ObsPinout, Window: 500,
	}
	specs, err := fault.Plan(n, cfg.Target, sim.Bits(cfg.Target), g.Cycles,
		fault.DistNormal, cfg.Fault, rand.New(rand.NewSource(1)))
	if err != nil {
		return ReplayPoint{}, err
	}
	var cycles uint64
	start := time.Now()
	for _, s := range specs {
		oc, err := g.ReplayOne(sim, s, cfg)
		if err != nil {
			return ReplayPoint{}, err
		}
		cycles += oc.EndCycle - s.Cycle
	}
	el := time.Since(start).Seconds()
	return ReplayPoint{
		Model: m.String(), Replays: n,
		ReplaysPerS:  float64(n) / el,
		MCyclesPerS:  float64(cycles) / el / 1e6,
		GoldenCycles: g.Cycles,
	}, nil
}

// measureReplayBatch measures the bit-parallel lockstep engine on the
// RTL model: n planned transients replayed through one 64-lane
// BatchReplayer (cycle-clustered groups, lane peeling on first
// consumption). Reported under model "rtl-batch" with the same
// replaysPerSec/mcyclesPerSec metrics as the scalar arms, so the
// -baseline gate covers the batched path the moment the point lands in
// the committed baseline.
func measureReplayBatch(n int) (ReplayPoint, error) {
	prog, err := workload("qsort")
	if err != nil {
		return ReplayPoint{}, err
	}
	factory := core.Factory(core.ModelRTL, prog, core.CampaignSetup())
	g, err := campaign.PrepareGolden(factory, campaign.GoldenOptions{})
	if err != nil {
		return ReplayPoint{}, err
	}
	gold, err := factory()
	if err != nil {
		return ReplayPoint{}, err
	}
	scalar, err := factory()
	if err != nil {
		return ReplayPoint{}, err
	}
	cfg := campaign.Config{
		Injections: 1, Seed: 1, Target: fault.TargetRF,
		Obs: campaign.ObsPinout, Window: 500, Lanes: campaign.MaxLanes,
	}
	specs, err := fault.Plan(n, cfg.Target, scalar.Bits(cfg.Target), g.Cycles,
		fault.DistNormal, cfg.Fault, rand.New(rand.NewSource(1)))
	if err != nil {
		return ReplayPoint{}, err
	}
	br := campaign.NewBatchReplayer(g, cfg, gold, scalar)
	if br == nil {
		return ReplayPoint{}, fmt.Errorf("rtl model lost its batch surface")
	}
	defer br.Close()
	var cycles uint64
	i := 0
	start := time.Now()
	err = br.Replay(func() (int, fault.Spec, bool) {
		if i >= len(specs) {
			return 0, fault.Spec{}, false
		}
		i++
		return i - 1, specs[i-1], true
	}, func(idx int, oc campaign.RunOutcome) error {
		cycles += oc.EndCycle - specs[idx].Cycle
		return nil
	})
	if err != nil {
		return ReplayPoint{}, err
	}
	el := time.Since(start).Seconds()
	return ReplayPoint{
		Model: "rtl-batch", Replays: n,
		ReplaysPerS:  float64(n) / el,
		MCyclesPerS:  float64(cycles) / el / 1e6,
		GoldenCycles: g.Cycles,
	}, nil
}

// measureReplaySched drives the scalar microarch arm's fault plan
// through one CursorReplayer (single-threaded, so the comparison
// against the scalar arm is engine-for-engine) and reports throughput
// plus the golden fast-forward cycles the schedule eliminated.
func measureReplaySched(scalar ReplayPoint) (ReplayPoint, ReplaySchedPoint, error) {
	const n = 120
	prog, err := workload("qsort")
	if err != nil {
		return ReplayPoint{}, ReplaySchedPoint{}, err
	}
	factory := core.Factory(core.ModelMicroarch, prog, core.CampaignSetup())
	g, err := campaign.PrepareGolden(factory, campaign.GoldenOptions{})
	if err != nil {
		return ReplayPoint{}, ReplaySchedPoint{}, err
	}
	cursor, err := factory()
	if err != nil {
		return ReplayPoint{}, ReplaySchedPoint{}, err
	}
	replay, err := factory()
	if err != nil {
		return ReplayPoint{}, ReplaySchedPoint{}, err
	}
	cfg := campaign.Config{
		Injections: 1, Seed: 1, Target: fault.TargetRF,
		Obs: campaign.ObsPinout, Window: 500, Sched: campaign.SchedCursor,
	}
	specs, err := fault.Plan(n, cfg.Target, cursor.Bits(cfg.Target), g.Cycles,
		fault.DistNormal, cfg.Fault, rand.New(rand.NewSource(1)))
	if err != nil {
		return ReplayPoint{}, ReplaySchedPoint{}, err
	}
	cr := campaign.NewCursorReplayer(g, cfg, cursor, replay)
	var cycles uint64
	i := 0
	start := time.Now()
	err = cr.Replay(func() (int, fault.Spec, bool) {
		if i >= len(specs) {
			return 0, fault.Spec{}, false
		}
		i++
		return i - 1, specs[i-1], true
	}, func(idx int, oc campaign.RunOutcome) error {
		cycles += oc.EndCycle - specs[idx].Cycle
		return nil
	})
	if err != nil {
		return ReplayPoint{}, ReplaySchedPoint{}, err
	}
	el := time.Since(start).Seconds()
	pt := ReplayPoint{
		Model: "replay-sched", Replays: n,
		ReplaysPerS:  float64(n) / el,
		MCyclesPerS:  float64(cycles) / el / 1e6,
		GoldenCycles: g.Cycles,
	}
	sp := ReplaySchedPoint{
		Model: core.ModelMicroarch.String(), Workload: "qsort", Replays: n,
		ReplaysPerS:       pt.ReplaysPerS,
		StreamFFMcycles:   float64(cr.StreamFF) / 1e6,
		CursorFFMcycles:   float64(cr.FastForward) / 1e6,
		EliminatedMcycles: float64(cr.StreamFF-cr.FastForward) / 1e6,
		Forks:             cr.Forks,
	}
	if scalar.ReplaysPerS > 0 {
		sp.SpeedupVsStream = pt.ReplaysPerS / scalar.ReplaysPerS
	}
	return pt, sp, nil
}

func measureSweep() (SweepPoint, error) {
	prog, err := workload("qsort")
	if err != nil {
		return SweepPoint{}, err
	}
	factory := core.Factory(core.ModelMicroarch, prog, core.CampaignSetup())
	cfg := campaign.Config{
		Injections: 40, Seed: 1, Target: fault.TargetRF,
		Obs: campaign.ObsPinout, Window: 500,
	}
	l1d := cfg
	l1d.Target = fault.TargetL1D
	start := time.Now()
	sr, err := campaign.Sweep([]campaign.SweepCampaign{
		{Key: "rf", Group: "ma/qsort", Factory: factory, Config: cfg},
		{Key: "l1d", Group: "ma/qsort", Factory: factory, Config: l1d},
	}, campaign.SweepOptions{})
	if err != nil {
		return SweepPoint{}, err
	}
	return SweepPoint{
		Campaigns: 2, Injections: cfg.Injections * 2,
		GoldenRuns: sr.GoldenRuns, WallSec: time.Since(start).Seconds(),
	}, nil
}

func measureEarlyStop() (EarlyStop, error) {
	const bench = "caes"
	cfg := campaign.Config{
		Injections: 80, Seed: 5, Target: fault.TargetRF,
		Obs: campaign.ObsPinout,
	}
	fixed, err := core.RunCampaign(bench, core.ModelMicroarch, core.CampaignSetup(), cfg)
	if err != nil {
		return EarlyStop{}, err
	}
	// The adaptive arm enables BOTH engine features: the convergence
	// exit (converged, cycle savings) and sequential stopping with a
	// margin/confidence loose enough to trigger inside 80 injections,
	// so the emitted runsSaved actually exercises the stopping path
	// instead of reporting a structural zero.
	cfg.EarlyStop = true
	cfg.TargetError = 0.1
	cfg.Confidence = 0.9
	cfg.MinRuns = 30
	adaptive, err := core.RunCampaign(bench, core.ModelMicroarch, core.CampaignSetup(), cfg)
	if err != nil {
		return EarlyStop{}, err
	}
	es := EarlyStop{
		Workload: bench, Injections: cfg.Injections,
		FixedMCycles:    float64(fixed.CyclesSimulated) / 1e6,
		AdaptiveMCycles: float64(adaptive.CyclesSimulated) / 1e6,
		Converged:       adaptive.ConvergedRuns,
		RunsSaved:       adaptive.RunsSaved,
		Drift:           math.Abs(adaptive.Unsafeness.P - fixed.Unsafeness.P),
		Margin:          adaptive.AchievedMargin,
	}
	if fixed.CyclesSimulated > 0 {
		es.SavedFrac = 1 - float64(adaptive.CyclesSimulated)/float64(fixed.CyclesSimulated)
	}
	return es, nil
}

// measurePruning compares the full engine against golden-trace class
// pruning on one windowed L1D campaign per abstraction level — the
// paper's primary pinout flow, where a fault first consumed beyond the
// observation window is provably Masked without replay.
func measurePruning(m core.Model) (PruningPoint, error) {
	const bench = "caes"
	n := 60
	if m == core.ModelRTL {
		n = 24
	}
	cfg := campaign.Config{
		Injections: n, Seed: 5, Target: fault.TargetL1D,
		Obs: campaign.ObsPinout, Window: 500,
	}
	full, err := core.RunCampaign(bench, m, core.CampaignSetup(), cfg)
	if err != nil {
		return PruningPoint{}, err
	}
	cfg.Prune = campaign.PruneClasses
	pruned, err := core.RunCampaign(bench, m, core.CampaignSetup(), cfg)
	if err != nil {
		return PruningPoint{}, err
	}
	pp := PruningPoint{
		Model: m.String(), Workload: bench, Injections: n,
		FullMCycles:  float64(full.CyclesSimulated) / 1e6,
		PruneMCycles: float64(pruned.CyclesSimulated) / 1e6,
		Pruned:       pruned.PrunedRuns,
		Extrapolated: pruned.ExtrapolatedRuns,
		Classes:      pruned.PruneClassCount,
		Drift:        math.Abs(pruned.Unsafeness.P - full.Unsafeness.P),
	}
	if pruned.CyclesSimulated > 0 {
		pp.Speedup = float64(full.CyclesSimulated) / float64(pruned.CyclesSimulated)
	}
	return pp, nil
}

// measureAVFPrior runs one sequential-stopping register-file campaign
// twice — plain, then with the injection-free AVF prediction seeded as
// the stopping prior — and reports both runs-to-margin counts. The
// prior moves only the stopping index, never the per-run outcomes, so
// the drift between the two arms' estimates is pure sample-size effect.
func measureAVFPrior() (AvfPriorPoint, error) {
	const bench = "caes"
	cfg := campaign.Config{
		Injections: 150, Seed: 5, Target: fault.TargetRF,
		Obs: campaign.ObsPinout, Window: 2_000,
		EarlyStop: true, TargetError: 0.1, Confidence: 0.9, MinRuns: 30,
		AVF: true,
	}
	plain, err := core.RunCampaign(bench, core.ModelMicroarch, core.CampaignSetup(), cfg)
	if err != nil {
		return AvfPriorPoint{}, err
	}
	cfg.AVFPrior = true
	prior, err := core.RunCampaign(bench, core.ModelMicroarch, core.CampaignSetup(), cfg)
	if err != nil {
		return AvfPriorPoint{}, err
	}
	ap := AvfPriorPoint{
		Workload: bench, Target: cfg.Target.String(), Injections: cfg.Injections,
		TargetError: cfg.TargetError,
		PlainRuns:   len(plain.Outcomes),
		PriorRuns:   len(prior.Outcomes),
		Drift:       math.Abs(prior.Unsafeness.P - plain.Unsafeness.P),
	}
	if plain.AVF != nil {
		ap.PredictedAVF = plain.AVF.Predicted
	}
	if ap.PlainRuns > 0 {
		ap.SavedFrac = 1 - float64(ap.PriorRuns)/float64(ap.PlainRuns)
	}
	return ap, nil
}

// measureProtection runs the protected-campaign arm: parity on the
// register file, fixed seed, pinout window — the smallest campaign that
// exercises the extended fault plan (overhead synthesis) and the
// use-time DUE classification together.
func measureProtection() (ProtectionPoint, error) {
	cfg := campaign.Config{
		Injections: 120, Seed: 7, Target: fault.TargetRF,
		Obs: campaign.ObsPinout, Window: 2_000,
		Protect: "rf=parity",
	}
	res, err := core.RunCampaign("qsort", core.ModelMicroarch, core.CampaignSetup(), cfg)
	if err != nil {
		return ProtectionPoint{}, err
	}
	return ProtectionPoint{
		Workload: "qsort", Protect: cfg.Protect, Injections: cfg.Injections,
		DataBits:     res.ProtectDataBits,
		OverheadBits: res.ProtectOverheadBits,
		Runs:         len(res.Outcomes),
		OverheadRuns: res.OverheadRuns,
		Masked:       res.Counts[campaign.ClassMasked],
		DUE:          res.Counts[campaign.ClassDUE],
		Unsafeness:   res.Unsafeness.P,
	}, nil
}

// obsOverheadGate is the tolerated fractional throughput cost of
// enabling the metrics registry, enforced whenever -baseline is set.
const obsOverheadGate = 0.03

// measureObsOverhead times the same full campaign (golden prep reused,
// replay phase timed) with observability off and on. Arms interleave
// and each keeps its best of three runs, so transient scheduler noise
// must hit the same arm three times to skew the ratio.
func measureObsOverhead() (ObsOverheadPoint, error) {
	const rounds = 3
	cfg := campaign.Config{
		Injections: 120, Seed: 9, Target: fault.TargetRF,
		Obs: campaign.ObsPinout, Window: 500,
	}
	arm := func(enabled bool) (float64, error) {
		if enabled {
			obs.Enable()
		} else {
			obs.Disable()
		}
		defer obs.Disable()
		start := time.Now()
		if _, err := core.RunCampaign("qsort", core.ModelMicroarch, core.CampaignSetup(), cfg); err != nil {
			return 0, err
		}
		return time.Since(start).Seconds(), nil
	}
	best := [2]float64{math.Inf(1), math.Inf(1)} // [plain, obs]
	for r := 0; r < rounds; r++ {
		for i, enabled := range []bool{false, true} {
			el, err := arm(enabled)
			if err != nil {
				return ObsOverheadPoint{}, err
			}
			if el < best[i] {
				best[i] = el
			}
		}
	}
	pt := ObsOverheadPoint{
		Workload: "qsort", Injections: cfg.Injections,
		PlainRPS: float64(cfg.Injections) / best[0],
		ObsRPS:   float64(cfg.Injections) / best[1],
	}
	if pt.ObsRPS < pt.PlainRPS {
		pt.OverheadFrac = 1 - pt.ObsRPS/pt.PlainRPS
	}
	return pt, nil
}

func workload(name string) (*asm.Program, error) {
	w, err := bench.ByName(name)
	if err != nil {
		return nil, err
	}
	return w.Program()
}
