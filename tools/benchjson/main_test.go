package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeBaseline(t *testing.T, doc Baseline) string {
	t.Helper()
	buf, err := json.Marshal(doc)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "baseline.json")
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestCompareBaselineGate pins the CI perf gate's decision logic without
// running any campaign: throughput within tolerance passes, a drop
// beyond -max-regression on any replay metric fails, and the
// deterministic avf-prior runs-to-margin count is gated with zero
// tolerance.
func TestCompareBaselineGate(t *testing.T) {
	base := Baseline{
		Replay: []ReplayPoint{
			{Model: "microarch", ReplaysPerS: 100, MCyclesPerS: 50},
			{Model: "rtl", ReplaysPerS: 10, MCyclesPerS: 5},
		},
		AvfPrior: AvfPriorPoint{Injections: 150, PlainRuns: 50, PriorRuns: 12},
		Protection: ProtectionPoint{
			Workload: "qsort", Protect: "rf=parity", Injections: 120,
			Runs: 120, OverheadRuns: 7, Masked: 80, DUE: 25,
		},
	}
	path := writeBaseline(t, base)

	cases := []struct {
		name    string
		mutate  func(*Baseline)
		wantErr string
	}{
		{name: "identical", mutate: func(*Baseline) {}},
		{name: "within tolerance", mutate: func(d *Baseline) {
			d.Replay[0].ReplaysPerS = 80 // -20% < 25% gate
		}},
		{name: "improvement", mutate: func(d *Baseline) {
			d.Replay[1].MCyclesPerS = 500
			d.AvfPrior.PriorRuns = 3
		}},
		{name: "unknown model ignored", mutate: func(d *Baseline) {
			d.Replay = append(d.Replay, ReplayPoint{Model: "rtl-batch", ReplaysPerS: 1})
		}},
		{name: "throughput regression", mutate: func(d *Baseline) {
			d.Replay[0].ReplaysPerS = 60 // -40% > 25% gate
		}, wantErr: "regression"},
		{name: "mcycles regression", mutate: func(d *Baseline) {
			d.Replay[1].MCyclesPerS = 1
		}, wantErr: "regression"},
		{name: "avf prior regression", mutate: func(d *Baseline) {
			d.AvfPrior.PriorRuns = 13 // one extra run: deterministic, zero tolerance
		}, wantErr: "avf-prior runs-to-margin"},
		{name: "protection split drift", mutate: func(d *Baseline) {
			d.Protection.DUE = 24 // deterministic class split: zero tolerance
		}, wantErr: "protected-campaign split"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			doc := base
			doc.Replay = append([]ReplayPoint(nil), base.Replay...)
			tc.mutate(&doc)
			err := compareBaseline(doc, path, 0.25)
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("gate failed on %s: %v", tc.name, err)
				}
				return
			}
			if err == nil {
				t.Fatalf("gate passed, want failure mentioning %q", tc.wantErr)
			}
		})
	}
}

// TestCompareBaselineSkipsAbsentProtection: a committed baseline that
// predates the protected-campaign arm carries a zero-valued point; the
// gate must skip it instead of flagging every current run as drift.
func TestCompareBaselineSkipsAbsentProtection(t *testing.T) {
	base := Baseline{Replay: []ReplayPoint{{Model: "microarch", ReplaysPerS: 100, MCyclesPerS: 50}}}
	path := writeBaseline(t, base)
	doc := base
	doc.Protection = ProtectionPoint{Workload: "qsort", Runs: 120, OverheadRuns: 7, DUE: 31}
	if err := compareBaseline(doc, path, 0.25); err != nil {
		t.Errorf("zero-valued baseline protection point gated the run: %v", err)
	}
}

// TestCompareBaselineBadInput: a missing or malformed baseline must fail
// the gate loudly rather than silently passing the PR.
func TestCompareBaselineBadInput(t *testing.T) {
	if err := compareBaseline(Baseline{}, filepath.Join(t.TempDir(), "nope.json"), 0.25); err == nil {
		t.Error("missing baseline file accepted")
	}
	path := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(path, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := compareBaseline(Baseline{}, path, 0.25); err == nil || !strings.Contains(err.Error(), "baseline") {
		t.Errorf("malformed baseline: err = %v, want parse failure", err)
	}
}

// TestMeasureAVFPrior runs the avf-prior arm end to end (two small
// sequential-stopping campaigns) and checks the properties the committed
// baseline relies on: the prediction is a proper fraction, both arms
// stop, and seeding the prior never costs runs.
func TestMeasureAVFPrior(t *testing.T) {
	if testing.Short() {
		t.Skip("runs two campaigns; covered by the CI perf-baseline step")
	}
	ap, err := measureAVFPrior()
	if err != nil {
		t.Fatal(err)
	}
	if ap.PredictedAVF <= 0 || ap.PredictedAVF >= 1 {
		t.Errorf("predicted AVF %.3f degenerate", ap.PredictedAVF)
	}
	if ap.PlainRuns <= 0 || ap.PriorRuns <= 0 {
		t.Fatalf("arms ran %d/%d runs, want both positive", ap.PlainRuns, ap.PriorRuns)
	}
	if ap.PriorRuns > ap.PlainRuns {
		t.Errorf("prior arm needed %d runs, plain arm %d: the prior cost runs", ap.PriorRuns, ap.PlainRuns)
	}
	if ap.SavedFrac < 0 || ap.SavedFrac >= 1 {
		t.Errorf("saved fraction %.3f out of [0,1)", ap.SavedFrac)
	}
	t.Logf("avf-prior: predicted %.3f, %d runs plain vs %d with prior (%.0f%% saved), drift %.4f",
		ap.PredictedAVF, ap.PlainRuns, ap.PriorRuns, ap.SavedFrac*100, ap.Drift)
}
