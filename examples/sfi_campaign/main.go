// sfi_campaign: run a statistical fault-injection campaign on the
// register file of the qsort workload at both abstraction levels and
// compare the vulnerability estimates — the paper's core experiment in
// miniature.
package main

import (
	"fmt"
	"os"

	"repro/internal/campaign"
	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/report"
	"repro/internal/stats"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "sfi_campaign:", err)
		os.Exit(1)
	}
}

func run() error {
	n, err := stats.LeveugleSampleSize(0, 0.02, 0.99)
	if err != nil {
		return err
	}
	fmt.Printf("paper-grade sample would be %d injections (2%% error, 99%% confidence);\n", n)
	fmt.Printf("this example runs 200 per model to stay interactive.\n\n")

	cfg := campaign.Config{
		Injections: 200,
		Seed:       7,
		Target:     fault.TargetRF,
		Obs:        campaign.ObsPinout,
		Window:     500,
	}
	setup := core.CampaignSetup()

	var vuln [2]float64
	for i, m := range []core.Model{core.ModelMicroarch, core.ModelRTL} {
		res, err := core.RunCampaign("qsort", m, setup, cfg)
		if err != nil {
			return err
		}
		fmt.Print(report.Campaign(fmt.Sprintf("qsort/%v", m), res))
		fmt.Println()
		vuln[i] = res.Unsafeness.P
	}
	diff, err := stats.CompareSeries(vuln[:1], vuln[1:])
	if err != nil {
		return err
	}
	fmt.Printf("cross-level difference: %.1f percentile units\n", diff.MeanAbsDiff*100)
	return nil
}
