// crosslevel: a miniature of the paper's full point-to-point comparison —
// Fig. 1's register-file experiment over a benchmark subset, printing
// per-benchmark bars and the headline difference statistics.
package main

import (
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/report"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "crosslevel:", err)
		os.Exit(1)
	}
}

func run() error {
	params := core.DefaultParams()
	params.Injections = 120
	params.Benches = []string{"sha", "stringsearch", "qsort"}

	fig, err := params.Figure1()
	if err != nil {
		return err
	}
	fmt.Print(report.Figure(fig))
	fmt.Println("\n(see cmd/paper -fig 1 for the full benchmark list and larger samples)")
	return nil
}
