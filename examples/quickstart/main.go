// Quickstart: assemble an AL32 program and execute it on all three
// abstraction levels (architectural reference, out-of-order
// microarchitectural model, RTL core), demonstrating that the levels
// agree architecturally while costing very different simulation effort.
package main

import (
	"fmt"
	"os"
	"time"

	"repro/internal/asm"
	"repro/internal/core"
	"repro/internal/refsim"
	"repro/internal/trace"
)

const src = `
; sum of squares 1..20, printed in decimal
	movi	r4, #0		; sum
	movi	r1, #1		; i
loop:	mul	r2, r1, r1
	add	r4, r4, r2
	addi	r1, r1, #1
	cmp	r1, #21
	blt	loop
	mov	r0, r4
	movi	r7, #4		; SysPutint
	svc	#0
	movi	r7, #1		; SysExit
	svc	#0
`

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "quickstart:", err)
		os.Exit(1)
	}
}

func run() error {
	prog, err := asm.Assemble("quickstart.s", src)
	if err != nil {
		return err
	}

	// Architectural reference interpreter.
	ref, err := refsim.New(prog)
	if err != nil {
		return err
	}
	ref.Run(1_000_000)
	fmt.Printf("reference:  output=%q insts=%d\n", ref.Output, ref.InstCount)

	// Both timed models under the same (TABLE I) setup.
	setup := core.DefaultSetup()
	for _, m := range []core.Model{core.ModelMicroarch, core.ModelRTL} {
		sim, err := core.NewSimulator(m, prog, setup)
		if err != nil {
			return err
		}
		sim.SetPinout(&trace.Pinout{})
		start := time.Now()
		stop := sim.Run(1_000_000)
		fmt.Printf("%-10v: output=%q stop=%v cycles=%d wall=%v\n",
			m, sim.Output(), stop, sim.Cycles(), time.Since(start).Round(time.Microsecond))
		if string(sim.Output()) != string(ref.Output) {
			return fmt.Errorf("%v diverged from the reference", m)
		}
	}
	fmt.Println("all three levels agree on the architectural result")
	return nil
}
