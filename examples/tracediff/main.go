// tracediff: inject one register-file fault into the RTL core and show
// how the Safeness methodology sees it — the faulty run's core-pinout
// transaction stream diverging from the golden stream.
package main

import (
	"fmt"
	"os"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/trace"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "tracediff:", err)
		os.Exit(1)
	}
}

func run() error {
	w, err := bench.ByName("qsort")
	if err != nil {
		return err
	}
	prog, err := w.Program()
	if err != nil {
		return err
	}
	setup := core.CampaignSetup()

	// Golden run.
	golden, err := core.NewSimulator(core.ModelRTL, prog, setup)
	if err != nil {
		return err
	}
	gPin := &trace.Pinout{}
	golden.SetPinout(gPin)
	golden.Run(1 << 30)
	fmt.Printf("golden: %d cycles, %d pinout transactions\n", golden.Cycles(), gPin.Len())

	// Faulty run: flip a stack-pointer bit a third of the way in.
	faulty, err := core.NewSimulator(core.ModelRTL, prog, setup)
	if err != nil {
		return err
	}
	fPin := &trace.Pinout{}
	faulty.SetPinout(fPin)
	injectAt := golden.Cycles() / 3
	for faulty.Cycles() < injectAt {
		faulty.Step()
	}
	const spBit = 13*32 + 6 // r13 (sp), bit 6
	if err := faulty.Flip(fault.TargetRF, spBit); err != nil {
		return err
	}
	fmt.Printf("injected: sp bit 6 at cycle %d\n", injectAt)
	faulty.Run(1 << 30)
	fmt.Printf("faulty: stop=%v after %d cycles, %d transactions\n",
		faulty.StopReason(), faulty.Cycles(), fPin.Len())

	d := trace.Compare(gPin, fPin, faulty.Cycles(), trace.CompareContent)
	if d.Match {
		fmt.Println("traces match: the fault was masked at the pinout")
		return nil
	}
	fmt.Printf("traces diverge at transaction %d (%s):\n", d.Index, d.Why)
	show := func(name string, p *trace.Pinout) {
		lo := d.Index - 1
		if lo < 0 {
			lo = 0
		}
		fmt.Printf("  %s:\n", name)
		for i := lo; i < d.Index+2 && i < len(p.Txns); i++ {
			t := p.Txns[i]
			fmt.Printf("    [%d] cycle=%-8d %s addr=%#06x digest=%016x\n",
				i, t.Cycle, t.Kind, t.Addr, t.Digest)
		}
	}
	show("golden", gPin)
	show("faulty", fPin)
	return nil
}
